package conair

// Benchmark harness: one benchmark family per table/figure of the paper's
// evaluation. The deterministic (step-count) versions of these numbers are
// printed by cmd/conair-bench; the benchmarks here measure the same runs
// in wall-clock time and report the headline counters via ReportMetric.
//
//	go test -bench=. -benchmem
//
// Families:
//
//	BenchmarkTable3_*   run-time overhead: original vs fix vs survival
//	BenchmarkTable5_*   dynamic reexecution points (reported as metric)
//	BenchmarkTable7_*   recovery vs whole-program restart
//	BenchmarkFigure2_*  the four atomicity-violation micro-patterns
//	BenchmarkFigure4_*  reexecution-region design-space ablation
//	BenchmarkAnalysis_* static analysis time (§6.4), intra vs full
//	BenchmarkMicro_*    interpreter and pipeline microbenchmarks

import (
	"runtime"
	"sync"
	"testing"

	"conair/internal/baseline"
	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/runner"
	"conair/internal/sched"
)

// Program cache: building and hardening the big apps costs tens of
// milliseconds, so benchmarks share prepared modules.
type prepared struct {
	clean      *mir.Module // full workload, failure-free
	cleanFix   *mir.Module // fix-mode hardened clean
	cleanSurv  *mir.Module // survival-mode hardened clean
	forced     *mir.Module // light workload, forced failure
	forcedFix  *mir.Module // fix-mode hardened forced
	forcedSurv *mir.Module
}

var (
	prepMu    sync.Mutex
	prepCache = map[string]*prepared{}
)

func prep(b *testing.B, name string) *prepared {
	b.Helper()
	prepMu.Lock()
	defer prepMu.Unlock()
	if p, ok := prepCache[name]; ok {
		return p
	}
	bug := bugs.ByName(name)
	if bug == nil {
		b.Fatalf("unknown bug %s", name)
	}
	p := &prepared{
		clean:  bug.Program(bugs.Config{}),
		forced: bug.Program(bugs.Config{Light: true, ForceBug: true}),
	}
	harden := func(m *mir.Module, fix bool) *mir.Module {
		opts := core.DefaultOptions()
		if fix {
			pos, err := bug.FixSite(m)
			if err != nil {
				b.Fatal(err)
			}
			opts = core.FixOptions(pos)
		}
		h, err := core.Harden(m, opts)
		if err != nil {
			b.Fatal(err)
		}
		return h.Module
	}
	p.cleanFix = harden(p.clean, true)
	p.cleanSurv = harden(p.clean, false)
	p.forcedFix = harden(p.forced, true)
	p.forcedSurv = harden(p.forced, false)
	prepCache[name] = p
	return p
}

func runOnce(b *testing.B, m *mir.Module, seed int64) *interp.Result {
	b.Helper()
	r := interp.RunModule(m, interp.Config{
		Sched: sched.NewRandom(seed), MaxSteps: 500_000_000,
	})
	if !r.Completed {
		b.Fatalf("run failed: %v", r.Failure)
	}
	return r
}

var benchApps = []string{
	"FFT", "HawkNL", "HTTrack", "MozillaXP", "MozillaJS",
	"MySQL1", "MySQL2", "SQLite", "Transmission", "ZSNES",
}

// --- Table 3: run-time overhead -----------------------------------------

func BenchmarkTable3_Overhead(b *testing.B) {
	for _, app := range benchApps {
		p := prep(b, app)
		variants := []struct {
			name string
			m    *mir.Module
		}{
			{"Original", p.clean},
			{"FixMode", p.cleanFix},
			{"Survival", p.cleanSurv},
		}
		for _, v := range variants {
			b.Run(app+"/"+v.name, func(b *testing.B) {
				var steps int64
				for i := 0; i < b.N; i++ {
					steps = runOnce(b, v.m, 1).Stats.Steps
				}
				b.ReportMetric(float64(steps), "steps/run")
			})
		}
	}
}

// --- Table 5: dynamic reexecution points ---------------------------------

func BenchmarkTable5_DynamicReexecPoints(b *testing.B) {
	for _, app := range benchApps {
		p := prep(b, app)
		b.Run(app, func(b *testing.B) {
			var cps int64
			for i := 0; i < b.N; i++ {
				cps = runOnce(b, p.cleanSurv, 1).Stats.Checkpoints
			}
			b.ReportMetric(float64(cps), "checkpoints/run")
		})
	}
}

// --- Table 7: recovery vs restart ----------------------------------------

func BenchmarkTable7_Recovery(b *testing.B) {
	for _, app := range benchApps {
		p := prep(b, app)
		b.Run(app, func(b *testing.B) {
			var retries, recSteps float64
			for i := 0; i < b.N; i++ {
				r := runOnce(b, p.forcedFix, 7)
				if e := r.MaxEpisode(); e != nil {
					retries = float64(e.Retries)
					recSteps = float64(e.Duration())
				}
			}
			b.ReportMetric(retries, "retries")
			b.ReportMetric(recSteps, "recovery-steps")
		})
	}
}

func BenchmarkTable7_Restart(b *testing.B) {
	for _, app := range benchApps {
		bug := bugs.ByName(app)
		failing := bug.Program(bugs.Config{ForceBug: true})
		clean := bugs.ByName(app).Program(bugs.Config{})
		b.Run(app, func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				rr := baseline.Restart(failing, clean, 7, 500_000_000)
				if !rr.Recovered {
					b.Fatal("restart rerun failed")
				}
				total = rr.TotalSteps
			}
			b.ReportMetric(float64(total), "restart-steps")
		})
	}
}

// --- Figure 2: atomicity-violation patterns ------------------------------

func BenchmarkFigure2_Patterns(b *testing.B) {
	for _, p := range bugs.Figure2Patterns() {
		if !p.ConAirRecovers {
			continue // recovery benchmarks only make sense where it recovers
		}
		m := p.Build()
		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, h.Module, int64(i))
			}
		})
	}
}

// --- Figure 4: design-space ablation --------------------------------------

func BenchmarkFigure4_Tradeoff(b *testing.B) {
	p := prep(b, "ZSNES")

	b.Run("ConAirIdempotent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(b, p.cleanSurv, 1)
		}
	})
	for _, interval := range []int64{1_000, 10_000, 100_000} {
		cfg := baseline.CheckpointConfig{
			Interval: interval, Seed: 5, MaxSteps: 500_000_000,
		}
		b.Run("FullCheckpoint/interval="+itoa(interval), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := baseline.RunCheckpointed(p.clean, cfg)
				if !r.Completed {
					b.Fatal("checkpoint baseline failed")
				}
			}
		})
	}
	b.Run("Restart", func(b *testing.B) {
		failing := bugs.ByName("ZSNES").Program(bugs.Config{ForceBug: true})
		for i := 0; i < b.N; i++ {
			rr := baseline.Restart(failing, p.clean, 7, 500_000_000)
			if !rr.Recovered {
				b.Fatal("restart failed")
			}
		}
	})
}

func itoa(v int64) string {
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- §6.4: static analysis time -------------------------------------------

func BenchmarkAnalysis_Survival(b *testing.B) {
	for _, app := range benchApps {
		m := bugs.ByName(app).Program(bugs.Config{Light: true})
		b.Run(app+"/Full", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Harden(m, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(app+"/IntraOnly", func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Interproc = false
			for i := 0; i < b.N; i++ {
				if _, err := core.Harden(m, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Microbenchmarks --------------------------------------------------------

// BenchmarkMicro_InterpreterThroughput measures raw interpreter speed on a
// register-only compute loop (steps per second ~ 1/op time).
func BenchmarkMicro_InterpreterThroughput(b *testing.B) {
	m := mir.MustParse(`
func main() {
entry:
  %i = const 0
  %acc = const 1
  jmp loop
loop:
  %t = mul %acc, 3
  %acc = add %t, %i
  %i = add %i, 1
  %c = lt %i, 100000
  br %c, loop, out
out:
  ret %acc
}`)
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		steps = runOnce(b, m, 1).Stats.Steps
	}
	b.ReportMetric(float64(steps), "steps/run")
}

// BenchmarkMicro_CheckpointCost isolates the cost of one checkpoint
// (register-image save): the same loop with and without a checkpoint per
// iteration.
func BenchmarkMicro_CheckpointCost(b *testing.B) {
	loop := func(withCheckpoint string) *mir.Module {
		return mir.MustParse(`
func main() {
entry:
  %i = const 0
  jmp loop
loop:
  ` + withCheckpoint + `
  %i = add %i, 1
  %c = lt %i, 100000
  br %c, loop, out
out:
  ret
}`)
	}
	b.Run("Without", func(b *testing.B) {
		m := loop("nop")
		for i := 0; i < b.N; i++ {
			runOnce(b, m, 1)
		}
	})
	b.Run("With", func(b *testing.B) {
		m := loop("checkpoint 1")
		for i := 0; i < b.N; i++ {
			runOnce(b, m, 1)
		}
	})
}

// BenchmarkMicro_CallReturn stresses the call/return hot path: a tight
// loop calling a tiny function per iteration. Frame pooling shows up here
// as the allocs/op drop (one pooled frame instead of a fresh regs+slots
// allocation per call).
func BenchmarkMicro_CallReturn(b *testing.B) {
	m := mir.MustParse(`
func work(%a) {
entry:
  %t = mul %a, 3
  %r = add %t, 1
  ret %r
}
func main() {
entry:
  %i = const 0
  %acc = const 0
  jmp loop
loop:
  %v = call work(%i)
  %acc = add %acc, %v
  %i = add %i, 1
  %c = lt %i, 50000
  br %c, loop, out
out:
  ret %acc
}`)
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		steps = runOnce(b, m, 1).Stats.Steps
	}
	b.ReportMetric(float64(steps), "steps/run")
}

// BenchmarkMicro_HeapLoadStore walks loads and stores across two heap
// blocks, exercising the address→block resolution (last-block cache plus
// binary search) on every memory instruction.
func BenchmarkMicro_HeapLoadStore(b *testing.B) {
	m := mir.MustParse(`
func main() {
entry:
  %a = alloc 64
  %bb = alloc 64
  %i = const 0
  jmp loop
loop:
  %off = and %i, 63
  %pa = add %a, %off
  %pb = add %bb, %off
  store %pa, %i
  %v = load %pa
  store %pb, %v
  %w = load %pb
  %i = add %i, 1
  %c = lt %i, 25000
  br %c, loop, out
out:
  ret
}`)
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		steps = runOnce(b, m, 1).Stats.Steps
	}
	b.ReportMetric(float64(steps), "steps/run")
}

// BenchmarkMicro_ManyThreads interleaves eight compute threads, stressing
// the per-step scheduler path (runnable-set construction + seeded pick)
// rather than instruction dispatch.
func BenchmarkMicro_ManyThreads(b *testing.B) {
	m := mir.MustParse(`
func worker() {
entry:
  %i = const 0
  jmp loop
loop:
  %i = add %i, 1
  %c = lt %i, 20000
  br %c, loop, out
out:
  ret
}
func main() {
entry:
  %t0 = spawn worker()
  %t1 = spawn worker()
  %t2 = spawn worker()
  %t3 = spawn worker()
  %t4 = spawn worker()
  %t5 = spawn worker()
  %t6 = spawn worker()
  %t7 = spawn worker()
  join %t0
  join %t1
  join %t2
  join %t3
  join %t4
  join %t5
  join %t6
  join %t7
  ret 0
}`)
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		steps = runOnce(b, m, 1).Stats.Steps
	}
	b.ReportMetric(float64(steps), "steps/run")
}

// BenchmarkMicro_EngineSweep runs a Table 3-shaped seed sweep (hardened
// ZSNES, forced failure) through the parallel run engine at one worker and
// at GOMAXPROCS workers. The two variants produce identical results; the
// wall-clock gap is the engine's scaling on this machine.
func BenchmarkMicro_EngineSweep(b *testing.B) {
	p := prep(b, "ZSNES")
	const seeds = 16
	sweep := func(workers int) {
		e := runner.Engine{Workers: workers}
		ok := runner.Map(e, seeds, func(i int) bool {
			r := interp.RunModule(p.forcedSurv, runner.SeedConfig(int64(i), 500_000_000))
			return r.Completed
		})
		for i, c := range ok {
			if !c {
				b.Fatalf("seed %d did not recover", i)
			}
		}
	}
	b.Run("workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(1)
		}
	})
	b.Run("workers=max", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(runtime.GOMAXPROCS(0))
		}
	})
}

// BenchmarkMicro_HardenPipeline measures the full static pipeline on the
// largest app.
func BenchmarkMicro_HardenPipeline(b *testing.B) {
	m := bugs.ByName("MySQL1").Program(bugs.Config{Light: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Harden(m, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_ParsePrint round-trips the largest textual module.
func BenchmarkMicro_ParsePrint(b *testing.B) {
	m := bugs.ByName("Transmission").Program(bugs.Config{Light: true})
	text := mir.Print(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mm, err := mir.Parse(text)
		if err != nil {
			b.Fatal(err)
		}
		_ = mir.Print(mm)
	}
}
