// Deadlock recovery: the HawkNL pattern (paper Figure 11).
//
// Two threads acquire two locks in opposite orders. ConAir converts lock
// acquisitions into timed locks; the analysis decides that only the
// shutdown thread's inner acquisition is recoverable (its reexecution
// region reaches back across the outer acquisition, so rolling back
// releases a resource), while the close thread's is pruned (a driver call
// cuts its region short, Figure 7a). At run time the shutdown thread times
// out, compensation releases its outer lock, both threads finish.
//
// Run with: go run ./examples/deadlock
package main

import (
	"fmt"
	"log"

	"conair"
)

const src = `
module hawknl-example
global nlock = 0
global slock = 0
global nSockets = 1
global closed = 0

func driverclose() {
entry:
  sleep 80
  storeg @closed, 1
  ret
}

func close() {
entry:
  %pn = addrg @nlock
  lock %pn
  call driverclose()
  %ps = addrg @slock
  lock %ps
  unlock %ps
  unlock %pn
  ret
}

func shutdown() {
entry:
  %ps = addrg @slock
  lock %ps
  %ns = loadg @nSockets
  br %ns, inner, done
inner:
  %pn = addrg @nlock
  lock %pn
  unlock %pn
  jmp done
done:
  unlock %ps
  ret
}

func main() {
entry:
  %t1 = spawn close()
  %t2 = spawn shutdown()
  join %t1
  join %t2
  output "ok", 1
  ret 0
}
`

func main() {
	m := conair.MustParse(src)

	fmt.Println("--- original program: the lock-order inversion deadlocks ---")
	r := conair.RunWith(m, conair.Config{
		Sched: conair.NewRandomScheduler(1), MaxSteps: 100_000, CollectOutput: true,
	})
	if r.Failure != nil {
		fmt.Println("hung as expected:", r.Failure)
	} else {
		fmt.Println("unexpectedly survived")
	}

	fmt.Println("\n--- hardening ---")
	h, err := conair.HardenSurvival(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deadlock sites found: %d; recovery planted at %d site(s) (the rest pruned as unrecoverable)\n",
		h.Report.Census.Deadlock, h.Report.RecoverySites)

	fmt.Println("\n--- hardened program, many seeds ---")
	for seed := int64(0); seed < 5; seed++ {
		hr := conair.RunWith(h.Module, conair.Config{
			Sched: conair.NewRandomScheduler(seed), MaxSteps: 1_000_000, CollectOutput: true,
		})
		if hr.Failure != nil {
			log.Fatalf("seed %d: %v", seed, hr.Failure)
		}
		fmt.Printf("seed %d: completed; rollbacks=%d, lock compensations=%d\n",
			seed, hr.Stats.Rollbacks, hr.Stats.CompUnlocks)
	}
}
