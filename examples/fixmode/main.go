// Fix mode: generate a safe temporary patch for a known failure.
//
// The scenario the paper motivates (§1, §3.1.2): users report a
// non-deterministic segmentation fault at a specific statement. The
// developers do not yet understand the root cause, but they can point
// ConAir at the failing dereference; fix mode hardens exactly that site,
// with zero measurable overhead anywhere else, and the crash becomes a
// transparent retry until the rest of the system catches up.
//
// Run with: go run ./examples/fixmode
package main

import (
	"fmt"
	"log"
	"strings"

	"conair"
)

const src = `
module cache-server
global gcache = 0
global requests = 0

// The reported crash: lookup dereferences the shared cache pointer and
// users see a segfault when a request races cache initialization.
func lookup(%key) {
entry:
  %c = loadg @gcache
  %slot = add %c, %key
  %v = load %slot
  ret %v
}

func handle(%key) {
entry:
  %n = loadg @requests
  %n1 = add %n, 1
  storeg @requests, %n1
  %v = call lookup(%key)
  output "hit", %v
  ret
}

func cacheinit() {
entry:
  sleep 400
  %h = alloc 8
  store %h, 100
  %h1 = add %h, 1
  store %h1, 101
  %h2 = add %h, 2
  store %h2, 102
  storeg @gcache, %h
  ret
}

func main() {
entry:
  %t = spawn cacheinit()
  call handle(2)
  join %t
  ret 0
}
`

func main() {
	m := conair.MustParse(src)

	fmt.Println("--- the reported crash ---")
	r := conair.Run(m, 1)
	fmt.Println(r.Failure)

	// The user report names the failing statement: the dereference in
	// lookup (its first load instruction).
	site, err := conair.FindSite(m, "lookup", conair.OpLoad, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- fix mode: hardening only %v ---\n", site)
	h, err := conair.Harden(m, conair.FixOptions(site))
	if err != nil {
		log.Fatal(err)
	}
	rep := h.Report
	fmt.Printf("sites hardened: %d; reexecution points: %d; inter-procedural: %d\n",
		rep.Census.Total(), rep.StaticReexecPoints, rep.InterprocSites)
	if rep.InterprocSites > 0 {
		fmt.Println("(the dereference depends only on lookup's parameter, so the")
		fmt.Println(" reexecution point was pushed into the caller — paper §4.3)")
	}

	fmt.Println("\n--- patched program, same interleaving ---")
	hr := conair.Run(h.Module, 1)
	if hr.Failure != nil {
		log.Fatal("patched program failed: ", hr.Failure)
	}
	for _, o := range hr.Output {
		fmt.Printf("output %s = %d\n", o.Text, o.Value)
	}
	if e := hr.MaxEpisode(); e != nil {
		fmt.Printf("crash absorbed: %d retries over %d steps, then normal service\n",
			e.Retries, e.Duration())
	}

	fmt.Println("\n--- the generated patch around the failure site ---")
	for _, line := range strings.Split(conair.Print(h.Module), "\n") {
		if strings.Contains(line, "checkpoint") || strings.Contains(line, "rollback") ||
			strings.Contains(line, "gt ") || strings.Contains(line, "recover") {
			fmt.Println(line)
		}
	}
}
