// Automatic output guards: the §3.4 extension.
//
// The paper's wrong-output recovery normally needs a developer-supplied
// correctness condition (§6.5): without one, a racy read flows silently
// into the output and ConAir has nothing to check. §3.4 describes the
// automatic variant — ConAir inserting a validity assertion before every
// output call (its prototype does this for fputs's NULL check). This
// example shows the same wrong-output bug three ways:
//
//  1. unprotected: completes, silently emitting the uninitialized value;
//  2. hardened without guards: still emits the wrong value (no condition
//     to check — the paper's conditional-recovery limitation);
//  3. hardened with -guard-outputs: the auto-oracle catches the zero,
//     recovery rolls back, the correct value is emitted.
//
// Run with: go run ./examples/autoguard
package main

import (
	"fmt"
	"log"

	"conair"
)

const src = `
module stats-reporter
global total = 0

func reporter() {
entry:
  %v = loadg @total
  output "total", %v
  ret
}

func aggregate() {
entry:
  sleep 200
  storeg @total, 1234
  ret
}

func main() {
entry:
  %t = spawn aggregate()
  %r = spawn reporter()
  join %r
  join %t
  ret 0
}
`

func main() {
	m := conair.MustParse(src)

	show := func(label string, mod *conair.Module) *conair.Result {
		r := conair.Run(mod, 1)
		if r.Failure != nil {
			fmt.Printf("%-28s failed: %v\n", label, r.Failure)
			return r
		}
		fmt.Printf("%-28s output total=%d (rollbacks=%d)\n",
			label, r.Output[0].Value, r.Stats.Rollbacks)
		return r
	}

	show("unprotected:", m)

	plain, err := conair.HardenSurvival(m)
	if err != nil {
		log.Fatal(err)
	}
	show("hardened, no guards:", plain.Module)

	opts := conair.SurvivalOptions()
	opts.GuardOutputs = true
	guarded, err := conair.Harden(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	r := show("hardened, -guard-outputs:", guarded.Module)
	if r.Failure == nil && r.Output[0].Value == 1234 {
		fmt.Println("\nthe auto-oracle turned a silent wrong output into a recovered one")
	}
}
