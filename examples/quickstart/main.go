// Quickstart: harden a racy program and watch it survive the race.
//
// The program has a classic order violation: a reader thread asserts on a
// flag that an initializer thread sets late. Unprotected, the forced
// interleaving kills it; after conair.HardenSurvival the reader rolls back
// over its (automatically identified) idempotent region until the flag is
// set.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"conair"
)

const src = `
module quickstart
global config = 0

func reader() {
entry:
  %v = loadg @config
  assert %v, "config read before initialization"
  output "config", %v
  ret
}

func main() {
entry:
  %t = spawn reader()
  sleep 300
  storeg @config, 7
  join %t
  ret 0
}
`

func main() {
	m := conair.MustParse(src)

	fmt.Println("--- original program, forced buggy interleaving ---")
	r := conair.Run(m, 1)
	if r.Failure != nil {
		fmt.Println("failed as expected:", r.Failure)
	} else {
		fmt.Println("unexpectedly survived (try another seed)")
	}

	fmt.Println("\n--- hardening with ConAir (survival mode) ---")
	h, err := conair.HardenSurvival(m)
	if err != nil {
		log.Fatal(err)
	}
	rep := h.Report
	fmt.Printf("failure sites: %d (assert %d, wrong-output %d, segfault %d, deadlock %d)\n",
		rep.Census.Total(), rep.Census.Assert, rep.Census.WrongOutput,
		rep.Census.Segfault, rep.Census.Deadlock)
	fmt.Printf("reexecution points planted: %d\n", rep.StaticReexecPoints)

	fmt.Println("\n--- hardened program, same interleaving ---")
	hr := conair.Run(h.Module, 1)
	if hr.Failure != nil {
		log.Fatal("hardened program failed: ", hr.Failure)
	}
	for _, o := range hr.Output {
		fmt.Printf("output %s = %d\n", o.Text, o.Value)
	}
	fmt.Printf("survived with %d rollback(s) over %d recovery episode(s)\n",
		hr.Stats.Rollbacks, len(hr.RecoveredEpisodes()))
	for _, e := range hr.RecoveredEpisodes() {
		fmt.Printf("  site %d: %d retries, %d interpreter steps\n",
			e.Site, e.Retries, e.Duration())
	}

	fmt.Println("\n--- transformed code (excerpt) ---")
	text := conair.Print(h.Module)
	fmt.Println(firstLines(text, 24))
}

func firstLines(s string, n int) string {
	out, count := "", 0
	for _, c := range s {
		out += string(c)
		if c == '\n' {
			count++
			if count == n {
				break
			}
		}
	}
	return out
}
