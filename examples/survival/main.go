// Survival mode on a real benchmark: the MozillaXP reconstruction
// (paper Figure 10), the suite's inter-procedural recovery case.
//
// GetState(mThd) dereferences a shared thread descriptor that another
// thread initializes late. The dereference depends only on GetState's
// parameter and GetState's body is idempotent, so ConAir pushes the
// reexecution point into the caller (§4.3): rolling back there rereads the
// shared pointer. The failing thread retries thousands of times until the
// initializer publishes the descriptor — the paper's slowest recovery.
//
// Run with: go run ./examples/survival
package main

import (
	"fmt"
	"log"

	"conair"
	"conair/internal/bugs"
)

func main() {
	bug := bugs.ByName("MozillaXP")
	fmt.Printf("%s (%s): %s failure from %s\n",
		bug.Name, bug.AppType, bug.Symptom, bug.RootCause)

	forced := bug.Program(bugs.Config{Light: true, ForceBug: true})

	fmt.Println("\n--- original program, forced interleaving ---")
	r := conair.Run(forced, 1)
	if r.Failure != nil {
		fmt.Println("failed as expected:", r.Failure)
	}

	fmt.Println("\n--- survival-mode hardening (no knowledge of the bug) ---")
	h, err := conair.HardenSurvival(forced)
	if err != nil {
		log.Fatal(err)
	}
	rep := h.Report
	fmt.Printf("census: %d potential failure sites; %d reexecution points; %d sites inter-procedural\n",
		rep.Census.Total(), rep.StaticReexecPoints, rep.InterprocSites)
	fmt.Printf("static analysis took %v\n", rep.AnalysisTime)

	fmt.Println("\n--- hardened program survives ---")
	hr := conair.Run(h.Module, 1)
	if hr.Failure != nil {
		log.Fatal("hardened run failed: ", hr.Failure)
	}
	e := hr.MaxEpisode()
	if e == nil {
		log.Fatal("no recovery episode recorded")
	}
	fmt.Printf("recovered after %d retries over %d interpreter steps (thread %d, site %d)\n",
		e.Retries, e.Duration(), e.Thread, e.Site)
	fmt.Printf("total rollbacks: %d, dynamic reexecution points: %d\n",
		hr.Stats.Rollbacks, hr.Stats.Checkpoints)
}
