// Package conair is a Go reproduction of "ConAir: Featherweight
// Concurrency Bug Recovery Via Single-Threaded Idempotent Execution"
// (Zhang, de Kruijf, Li, Lu, Sankaralingam — ASPLOS 2013).
//
// ConAir hardens multi-threaded programs so they recover from concurrency
// -bug failures at run time by rolling back a single thread over an
// idempotent code region — no memory checkpoints, no multi-thread
// coordination, no OS or hardware support. This package is the public
// facade over the full pipeline:
//
//   - programs are written in MIR, a small SSA-flavoured IR standing in
//     for LLVM bitcode (build with NewBuilder, or parse the textual syntax
//     with Parse);
//   - Harden runs ConAir's static analyses (failure-site identification,
//     idempotent-region identification, pruning, inter-procedural
//     recovery) and rewrites the program with checkpoints and bounded
//     rollback-recovery code;
//   - Run executes original or hardened programs on a deterministic
//     multi-threaded interpreter with seeded scheduling, so buggy
//     interleavings are forcible and every experiment is repeatable.
//
// Quick start:
//
//	m := conair.MustParse(src)
//	hardened, err := conair.Harden(m, conair.SurvivalOptions())
//	result := conair.Run(hardened.Module, 42)
//
// The subpackages expose the full machinery: internal/mir (IR),
// internal/analysis, internal/transform, internal/interp (the VM),
// internal/bugs (the paper's 10 benchmark reconstructions),
// internal/baseline (restart and whole-checkpoint recovery), and
// internal/experiments (regenerating every table of the evaluation).
package conair

import (
	"conair/internal/analysis"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

// Re-exported core types, so typical use needs only this package.
type (
	// Module is a MIR program.
	Module = mir.Module
	// Builder constructs modules programmatically.
	Builder = mir.Builder
	// Pos addresses one instruction.
	Pos = mir.Pos
	// Options configures Harden.
	Options = core.Options
	// Hardened is a transformed module plus its report.
	Hardened = core.Hardened
	// Report summarizes what hardening did.
	Report = core.Report
	// Result is an interpreter run outcome.
	Result = interp.Result
	// Failure describes a detected failure.
	Failure = interp.Failure
	// Config controls an interpreter run.
	Config = interp.Config
	// Scheduler decides thread interleaving.
	Scheduler = sched.Scheduler
)

// Parse reads a module from the textual MIR syntax.
func Parse(src string) (*Module, error) { return mir.Parse(src) }

// MustParse is Parse but panics on error.
func MustParse(src string) *Module { return mir.MustParse(src) }

// Print renders a module in textual MIR syntax.
func Print(m *Module) string { return mir.Print(m) }

// NewBuilder starts a programmatic module definition.
func NewBuilder(name string) *Builder { return mir.NewBuilder(name) }

// SurvivalOptions is the paper's evaluated configuration in survival mode:
// extended (§4.1) regions, §4.2 optimization and §4.3 inter-procedural
// recovery enabled.
func SurvivalOptions() Options { return core.DefaultOptions() }

// FixOptions configures fix mode for one known failure site.
func FixOptions(site Pos) Options { return core.FixOptions(site) }

// Harden runs the full ConAir pipeline and returns the hardened module
// with its report. The input module is not modified.
func Harden(m *Module, opts Options) (*Hardened, error) {
	return core.Harden(m, opts)
}

// HardenSurvival hardens with the default survival configuration.
func HardenSurvival(m *Module) (*Hardened, error) {
	return core.Harden(m, core.DefaultOptions())
}

// FindSite locates a failure site by function name plus the nth
// occurrence of an instruction kind — how fix-mode users name the failing
// statement. Use with the op constants re-exported below.
func FindSite(m *Module, funcName string, op mir.Op, nth int) (Pos, error) {
	return analysis.FindSite(m, funcName, op, nth)
}

// Failure-site instruction kinds for FindSite.
const (
	OpAssert = mir.OpAssert
	OpOutput = mir.OpOutput
	OpLoad   = mir.OpLoad
	OpStore  = mir.OpStore
	OpLock   = mir.OpLock
)

// Run executes the module under a seeded random scheduler and collects
// program output. Identical (module, seed) pairs give identical runs.
func Run(m *Module, seed int64) *Result {
	return interp.RunModule(m, Config{
		Sched:         sched.NewRandom(seed),
		CollectOutput: true,
	})
}

// RunWith executes the module under an explicit interpreter config.
func RunWith(m *Module, cfg Config) *Result { return interp.RunModule(m, cfg) }

// NewRandomScheduler returns the seeded scheduler Run uses.
func NewRandomScheduler(seed int64) Scheduler { return sched.NewRandom(seed) }
