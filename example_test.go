package conair_test

import (
	"fmt"

	"conair"
)

// Harden a racy program in survival mode and run it under a forced buggy
// interleaving: the hardened program recovers by rolling the failing
// thread back over its idempotent region.
func Example() {
	src := `
module demo
global flag = 0

func reader() {
entry:
  %v = loadg @flag
  assert %v, "flag read before initialization"
  ret
}

func main() {
entry:
  %t = spawn reader()
  sleep 100
  storeg @flag, 1
  join %t
  ret 0
}
`
	m := conair.MustParse(src)

	// The original program fails.
	r := conair.Run(m, 1)
	fmt.Println("original completed:", r.Completed)

	// The hardened program survives.
	h, err := conair.HardenSurvival(m)
	if err != nil {
		panic(err)
	}
	hr := conair.Run(h.Module, 1)
	fmt.Println("hardened completed:", hr.Completed)
	fmt.Println("rolled back:", hr.Stats.Rollbacks > 0)

	// Output:
	// original completed: false
	// hardened completed: true
	// rolled back: true
}

// Fix mode hardens exactly one developer-named failure site.
func ExampleFindSite() {
	src := `
module fixdemo
global gp = 0

func use() {
entry:
  %p = loadg @gp
  %v = load %p
  ret %v
}

func main() {
entry:
  %h = alloc 2
  store %h, 5
  storeg @gp, %h
  %r = call use()
  ret %r
}
`
	m := conair.MustParse(src)
	site, err := conair.FindSite(m, "use", conair.OpLoad, 0)
	if err != nil {
		panic(err)
	}
	h, err := conair.Harden(m, conair.FixOptions(site))
	if err != nil {
		panic(err)
	}
	fmt.Println("sites hardened:", h.Report.Census.Total())
	fmt.Println("reexecution points:", h.Report.StaticReexecPoints)

	// Output:
	// sites hardened: 1
	// reexecution points: 1
}

// Programs can be built programmatically with the Builder instead of the
// textual syntax.
func ExampleNewBuilder() {
	b := conair.NewBuilder("built")
	g := b.Global("answer", 42)
	f := b.Func("main")
	v := f.LoadG("v", g)
	f.Output("answer", v)
	f.Ret(v)
	m, err := b.Module()
	if err != nil {
		panic(err)
	}
	r := conair.Run(m, 1)
	fmt.Println("exit:", r.ExitCode)
	fmt.Printf("%s = %d\n", r.Output[0].Text, r.Output[0].Value)

	// Output:
	// exit: 42
	// answer = 42
}
