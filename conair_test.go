package conair

import (
	"testing"

	"conair/internal/mir"
)

const racySrc = `
global flag = 0

func reader() {
entry:
  %v = loadg @flag
  assert %v, "flag read before initialization"
  ret
}

func main() {
entry:
  %t = spawn reader()
  sleep 200
  storeg @flag, 1
  join %t
  ret 0
}
`

func TestPublicAPIRoundTrip(t *testing.T) {
	m, err := Parse(racySrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(Print(m)); err != nil {
		t.Fatalf("print/parse round trip: %v", err)
	}

	// The original program fails under the forced interleaving.
	if r := Run(m, 1); r.Completed {
		t.Fatal("original program should fail")
	}

	// Survival hardening recovers it.
	h, err := HardenSurvival(m)
	if err != nil {
		t.Fatal(err)
	}
	if h.Report.Census.Total() == 0 || h.Report.StaticReexecPoints == 0 {
		t.Errorf("report looks empty: %+v", h.Report)
	}
	for seed := int64(0); seed < 10; seed++ {
		if r := Run(h.Module, seed); !r.Completed {
			t.Fatalf("seed %d: hardened run failed: %v", seed, r.Failure)
		}
	}
}

func TestPublicAPIFixMode(t *testing.T) {
	m := MustParse(racySrc)
	pos, err := FindSite(m, "reader", OpAssert, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Harden(m, FixOptions(pos))
	if err != nil {
		t.Fatal(err)
	}
	if h.Report.Census.Total() != 1 {
		t.Errorf("fix mode census = %d, want 1", h.Report.Census.Total())
	}
	if r := Run(h.Module, 3); !r.Completed {
		t.Fatalf("fix-mode hardened run failed: %v", r.Failure)
	}
}

func TestPublicAPIBuilder(t *testing.T) {
	b := NewBuilder("api")
	g := b.Global("g", 41)
	f := b.Func("main")
	v := f.LoadG("v", g)
	v1 := f.Bin("v1", mir.BinAdd, v, mir.Imm(1))
	f.Output("answer", v1)
	f.Ret(v1)
	m, err := b.Module()
	if err != nil {
		t.Fatal(err)
	}
	r := Run(m, 1)
	if !r.Completed || r.ExitCode != 42 || len(r.Output) != 1 {
		t.Fatalf("builder program run = %+v", r)
	}
}
